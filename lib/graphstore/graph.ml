type dir = Out | In | Both

(* One direction of the frozen index: for every used label, a CSR row
   group.  [off] has [node_count + 1] entries; the neighbours of node [n]
   under this label are [tgt.(off.(n)) .. tgt.(off.(n+1) - 1)], sorted
   ascending so lookups are mergeable and [mem_edge] can bisect. *)
type csr_rows = { off : int array; tgt : int array }

type csr = {
  slot_of_label : int array; (* label id -> dense slot, or -1 *)
  label_of_slot : int array; (* dense slot -> label id *)
  fwd : csr_rows array; (* slot -> out-adjacency *)
  bwd : csr_rows array; (* slot -> in-adjacency *)
}

(* Per-label adjacency: label id -> (node oid -> neighbour oids).  The two
   arrays are indexed by interned label id and grown on demand; an absent
   hashtable means no edge with that label exists yet.  The hashtables are
   the mutable source of truth; [freeze] distils them into the read-only
   [csr] index, which every mutation invalidates. *)
type t = {
  interner : Interner.t;
  type_label : int;
  mutable node_labels : string array;
  mutable node_count : int;
  node_index : (string, int) Hashtbl.t;
  mutable adj_out : (int, int list ref) Hashtbl.t option array;
  mutable adj_in : (int, int list ref) Hashtbl.t option array;
  mutable edge_count : int;
  mutable label_counts : int array; (* label id -> number of edges *)
  mutable csr : csr option;
}

let create ?(initial_nodes = 1024) () =
  let interner = Interner.create () in
  let type_label = Interner.intern interner "type" in
  {
    interner;
    type_label;
    node_labels = Array.make (max 1 initial_nodes) "";
    node_count = 0;
    node_index = Hashtbl.create initial_nodes;
    adj_out = Array.make 16 None;
    adj_in = Array.make 16 None;
    edge_count = 0;
    label_counts = Array.make 16 0;
    csr = None;
  }

let interner t = t.interner
let type_label t = t.type_label

let add_node t label =
  match Hashtbl.find_opt t.node_index label with
  | Some oid -> oid
  | None ->
    t.csr <- None;
    let cap = Array.length t.node_labels in
    if t.node_count >= cap then begin
      let labels = Array.make (2 * cap) "" in
      Array.blit t.node_labels 0 labels 0 t.node_count;
      t.node_labels <- labels
    end;
    let oid = t.node_count in
    t.node_labels.(oid) <- label;
    t.node_count <- t.node_count + 1;
    Hashtbl.add t.node_index label oid;
    oid

let grow_adj t label =
  let cap = Array.length t.adj_out in
  if label >= cap then begin
    let n = max (2 * cap) (label + 1) in
    let out = Array.make n None and inn = Array.make n None and counts = Array.make n 0 in
    Array.blit t.adj_out 0 out 0 cap;
    Array.blit t.adj_in 0 inn 0 cap;
    Array.blit t.label_counts 0 counts 0 cap;
    t.adj_out <- out;
    t.adj_in <- inn;
    t.label_counts <- counts
  end

let table_of arr label =
  match arr.(label) with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    arr.(label) <- Some tbl;
    tbl

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let check_oid t oid ctx =
  if oid < 0 || oid >= t.node_count then
    invalid_arg (Printf.sprintf "Graph.%s: unknown oid %d" ctx oid)

let add_edge t src label dst =
  check_oid t src "add_edge";
  check_oid t dst "add_edge";
  t.csr <- None;
  grow_adj t label;
  push (table_of t.adj_out label) src dst;
  push (table_of t.adj_in label) dst src;
  t.edge_count <- t.edge_count + 1;
  t.label_counts.(label) <- t.label_counts.(label) + 1

let add_edge_s t src label dst = add_edge t src (Interner.intern t.interner label) dst

let find_node t label = Hashtbl.find_opt t.node_index label

let node_label t oid =
  check_oid t oid "node_label";
  t.node_labels.(oid)

let n_nodes t = t.node_count
let n_edges t = t.edge_count

let labels t =
  let acc = ref [] in
  for label = Array.length t.label_counts - 1 downto 0 do
    if t.label_counts.(label) > 0 then acc := label :: !acc
  done;
  !acc

(* --- the frozen CSR index ------------------------------------------- *)

(* Pack one direction's hashtable adjacency for [label] into CSR rows.
   Two passes over the per-node lists: count, then fill backwards so each
   row comes out in insertion order; a final per-row sort makes rows
   ascending. *)
let csr_rows_of t tbl =
  let n = t.node_count in
  let off = Array.make (n + 1) 0 in
  Hashtbl.iter (fun src cell -> off.(src + 1) <- off.(src + 1) + List.length !cell) tbl;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let tgt = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  Hashtbl.iter
    (fun src cell ->
      List.iter
        (fun dst ->
          tgt.(cursor.(src)) <- dst;
          cursor.(src) <- cursor.(src) + 1)
        !cell)
    tbl;
  for node = 0 to n - 1 do
    let lo = off.(node) and hi = off.(node + 1) in
    if hi - lo > 1 then begin
      let row = Array.sub tgt lo (hi - lo) in
      Array.sort compare row;
      Array.blit row 0 tgt lo (hi - lo)
    end
  done;
  { off; tgt }

let empty_rows = { off = [||]; tgt = [||] }

let freeze t =
  if t.csr = None then begin
    let n_labels = Array.length t.label_counts in
    let slot_of_label = Array.make n_labels (-1) in
    let used = ref [] in
    for label = n_labels - 1 downto 0 do
      if t.label_counts.(label) > 0 then used := label :: !used
    done;
    let label_of_slot = Array.of_list !used in
    Array.iteri (fun slot label -> slot_of_label.(label) <- slot) label_of_slot;
    let side arr =
      Array.map
        (fun label ->
          match arr.(label) with Some tbl -> csr_rows_of t tbl | None -> empty_rows)
        label_of_slot
    in
    t.csr <- Some { slot_of_label; label_of_slot; fwd = side t.adj_out; bwd = side t.adj_in }
  end

let unfreeze t = t.csr <- None
let frozen t = t.csr <> None

let csr_bytes t =
  match t.csr with
  | None -> 0
  | Some c ->
    let side rows =
      Array.fold_left
        (fun acc r -> acc + (Sys.word_size / 8 * (Array.length r.off + Array.length r.tgt)))
        0 rows
    in
    side c.fwd + side c.bwd
    + (Sys.word_size / 8 * (Array.length c.slot_of_label + Array.length c.label_of_slot))

let slot_rows c label dir =
  if label < 0 || label >= Array.length c.slot_of_label then None
  else
    let slot = c.slot_of_label.(label) in
    if slot < 0 then None
    else Some (match dir with Out -> c.fwd.(slot) | In -> c.bwd.(slot) | Both -> assert false)

let iter_row rows n f =
  if n + 1 < Array.length rows.off then
    for i = rows.off.(n) to rows.off.(n + 1) - 1 do
      f rows.tgt.(i)
    done

let row_length rows n =
  if n + 1 < Array.length rows.off then rows.off.(n + 1) - rows.off.(n) else 0

(* --- lookups (CSR when frozen, hashtables otherwise) ------------------ *)

let adjacent arr label oid =
  if label < 0 || label >= Array.length arr then []
  else
    match arr.(label) with
    | None -> []
    | Some tbl -> ( match Hashtbl.find_opt tbl oid with Some cell -> !cell | None -> [])

let csr_iter_neighbors c n label dir f =
  let one dir =
    match slot_rows c label dir with None -> () | Some rows -> iter_row rows n f
  in
  match dir with
  | Both ->
    one Out;
    one In
  | d -> one d

let iter_neighbors t n label dir f =
  match t.csr with
  | Some c -> csr_iter_neighbors c n label dir f
  | None -> (
    match dir with
    | Out -> List.iter f (adjacent t.adj_out label n)
    | In -> List.iter f (adjacent t.adj_in label n)
    | Both ->
      List.iter f (adjacent t.adj_out label n);
      List.iter f (adjacent t.adj_in label n))

let neighbors t n label dir =
  match t.csr with
  | None -> (
    match dir with
    | Out -> adjacent t.adj_out label n
    | In -> adjacent t.adj_in label n
    | Both -> adjacent t.adj_out label n @ adjacent t.adj_in label n)
  | Some c ->
    let acc = ref [] in
    csr_iter_neighbors c n label dir (fun m -> acc := m :: !acc);
    List.rev !acc

(* One direction, every label: on the frozen index this is a slot-major
   sweep of per-label ranges (the merged range scan of Any_dir). *)
let iter_neighbors_all_labels t n dir f =
  let dirs = match dir with Out -> [ Out ] | In -> [ In ] | Both -> [ Out; In ] in
  match t.csr with
  | Some c ->
    List.iter
      (fun d ->
        let side = match d with Out -> c.fwd | In -> c.bwd | Both -> assert false in
        Array.iter (fun rows -> iter_row rows n f) side)
      dirs
  | None ->
    List.iter
      (fun d ->
        let arr = match d with Out -> t.adj_out | In -> t.adj_in | Both -> assert false in
        Array.iter
          (fun tbl ->
            match tbl with
            | None -> ()
            | Some tbl -> (
              match Hashtbl.find_opt tbl n with
              | Some cell -> List.iter f !cell
              | None -> ()))
          arr)
      dirs

(* A restricted label set (the RELAX sub-property closure): merged scan of
   the labels' ranges, in the order given. *)
let iter_neighbors_labels t n labels dir f =
  Array.iter (fun label -> iter_neighbors t n label dir f) labels

let iter_neighbors_any t n f =
  iter_neighbors_all_labels t n Out f;
  iter_neighbors_all_labels t n In f

let row_mem rows n dst =
  (* bisect the sorted row *)
  let lo = ref rows.off.(n) and hi = ref rows.off.(n + 1) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = rows.tgt.(mid) in
    if v = dst then found := true else if v < dst then lo := mid + 1 else hi := mid
  done;
  !found

let mem_edge t src label dst =
  match t.csr with
  | Some c -> (
    match slot_rows c label Out with
    | Some rows when src + 1 < Array.length rows.off -> row_mem rows src dst
    | _ -> false)
  | None -> List.exists (fun v -> v = dst) (adjacent t.adj_out label src)

let has_adjacent t n label dir =
  match t.csr with
  | Some c -> (
    match dir with
    | Both ->
      (match slot_rows c label Out with Some r -> row_length r n > 0 | None -> false)
      || (match slot_rows c label In with Some r -> row_length r n > 0 | None -> false)
    | d -> ( match slot_rows c label d with Some r -> row_length r n > 0 | None -> false))
  | None -> (
    match dir with
    | Out -> adjacent t.adj_out label n <> []
    | In -> adjacent t.adj_in label n <> []
    | Both -> adjacent t.adj_out label n <> [] || adjacent t.adj_in label n <> [])

let keys_of t arr rows_of label =
  Oid_set.of_iter (fun add ->
      match t.csr with
      | Some c -> (
        match rows_of c label with
        | None -> ()
        | Some rows ->
          for n = 0 to t.node_count - 1 do
            if row_length rows n > 0 then add n
          done)
      | None ->
        if label >= 0 && label < Array.length arr then begin
          match arr.(label) with
          | None -> ()
          | Some tbl -> Hashtbl.iter (fun oid cell -> if !cell <> [] then add oid) tbl
        end)

let tails_by_label t label = keys_of t t.adj_out (fun c l -> slot_rows c l Out) label
let heads_by_label t label = keys_of t t.adj_in (fun c l -> slot_rows c l In) label

let tails_and_heads t label =
  let set = tails_by_label t label in
  Oid_set.union_into set (heads_by_label t label);
  set

let out_degree t n label =
  match t.csr with
  | Some c -> ( match slot_rows c label Out with Some r -> row_length r n | None -> 0)
  | None -> List.length (adjacent t.adj_out label n)

let in_degree t n label =
  match t.csr with
  | Some c -> ( match slot_rows c label In with Some r -> row_length r n | None -> 0)
  | None -> List.length (adjacent t.adj_in label n)

let iter_nodes t f =
  for oid = 0 to t.node_count - 1 do
    f oid
  done

let iter_edges t f =
  Array.iteri
    (fun label tbl ->
      match tbl with
      | None -> ()
      | Some tbl -> Hashtbl.iter (fun src cell -> List.iter (fun dst -> f src label dst) !cell) tbl)
    t.adj_out

type stats = {
  nodes : int;
  edges : int;
  distinct_labels : int;
  max_out_degree : int;
  max_in_degree : int;
}

let stats t =
  let max_deg arr =
    let best = ref 0 in
    Array.iter
      (fun tbl ->
        match tbl with
        | None -> ()
        | Some tbl -> Hashtbl.iter (fun _ cell -> best := max !best (List.length !cell)) tbl)
      arr;
    !best
  in
  {
    nodes = t.node_count;
    edges = t.edge_count;
    distinct_labels = List.length (labels t);
    max_out_degree = max_deg t.adj_out;
    max_in_degree = max_deg t.adj_in;
  }

let pp_stats ppf s =
  Format.fprintf ppf "nodes=%d edges=%d labels=%d max_out=%d max_in=%d" s.nodes s.edges
    s.distinct_labels s.max_out_degree s.max_in_degree
