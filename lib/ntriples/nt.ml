module Graph = Graphstore.Graph
module Interner = Graphstore.Interner

exception Parse_error of string * int

(* Reserved predicates: the four ontology edge labels of E_K (§2) plus a
   marker for isolated nodes (which plain triples cannot express). *)
let p_sc = "sc"
let p_sp = "sp"
let p_dom = "dom"
let p_range = "range"
let p_node = "node"

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '>' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    s

let write_triple oc s p o =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '<';
  escape buf s;
  Buffer.add_string buf "> <";
  escape buf p;
  Buffer.add_string buf "> <";
  escape buf o;
  Buffer.add_string buf "> .";
  output_string oc (Buffer.contents buf);
  output_char oc '\n'

let write_graph oc g =
  let interner = Graph.interner g in
  let touched = Graphstore.Oid_set.create ~capacity:(Graph.n_nodes g) () in
  Graph.iter_edges g (fun src label dst ->
      Graphstore.Oid_set.add touched src;
      Graphstore.Oid_set.add touched dst;
      write_triple oc (Graph.node_label g src) (Interner.name interner label) (Graph.node_label g dst));
  Graph.iter_nodes g (fun oid ->
      if not (Graphstore.Oid_set.mem touched oid) then
        let l = Graph.node_label g oid in
        write_triple oc l p_node l)

let write_ontology oc k =
  let interner = Ontology.interner k in
  let name = Interner.name interner in
  List.iter
    (fun cls -> List.iter (fun super -> write_triple oc (name cls) p_sc (name super)) (Ontology.super_classes k cls))
    (Ontology.classes k);
  List.iter
    (fun p ->
      List.iter (fun super -> write_triple oc (name p) p_sp (name super)) (Ontology.super_properties k p);
      (match Ontology.domain k p with Some c -> write_triple oc (name p) p_dom (name c) | None -> ());
      match Ontology.range k p with Some c -> write_triple oc (name p) p_range (name c) | None -> ())
    (Ontology.properties k)

let save path ~graph ~ontology =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_graph oc graph;
      write_ontology oc ontology)

(* --- parsing ------------------------------------------------------- *)

type cursor = { line : string; mutable pos : int; lineno : int }

let fail c msg = raise (Parse_error (msg, c.lineno))

let skip_ws c =
  let n = String.length c.line in
  while c.pos < n && (c.line.[c.pos] = ' ' || c.line.[c.pos] = '\t') do
    c.pos <- c.pos + 1
  done

let term c =
  skip_ws c;
  let n = String.length c.line in
  if c.pos >= n || c.line.[c.pos] <> '<' then fail c "expected '<'";
  c.pos <- c.pos + 1;
  let buf = Buffer.create 32 in
  let rec scan () =
    if c.pos >= n then fail c "unterminated term"
    else
      match c.line.[c.pos] with
      | '>' -> c.pos <- c.pos + 1
      | '\\' ->
        if c.pos + 1 >= n then fail c "dangling escape";
        Buffer.add_char buf c.line.[c.pos + 1];
        c.pos <- c.pos + 2;
        scan ()
      | ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        scan ()
  in
  scan ();
  Buffer.contents buf

let parse_line lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else begin
    let c = { line = trimmed; pos = 0; lineno } in
    let s = term c in
    let p = term c in
    let o = term c in
    skip_ws c;
    if c.pos >= String.length c.line || c.line.[c.pos] <> '.' then fail c "expected terminating '.'";
    Some (s, p, o)
  end

type report = { triples : int; malformed : int; errors : (string * int) list }

let max_recorded_errors = 5

let ingest g k (s, p, o) =
  if p = p_sc then begin
    Ontology.add_subclass k s o;
    ignore (Graph.add_node g s);
    ignore (Graph.add_node g o)
  end
  else if p = p_sp then Ontology.add_subproperty k s o
  else if p = p_dom then Ontology.add_domain k s o
  else if p = p_range then Ontology.add_range k s o
  else if p = p_node then ignore (Graph.add_node g s)
  else begin
    let src = Graph.add_node g s in
    let dst = Graph.add_node g o in
    Graph.add_edge_s g src p dst
  end

let read_report ?(lenient = false) ic =
  let g = Graph.create () in
  let k = Ontology.create (Graph.interner g) in
  let lineno = ref 0 in
  let triples = ref 0 and malformed = ref 0 and errors = ref [] in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_line !lineno line with
       | None -> ()
       | Some spo ->
         ingest g k spo;
         incr triples
       | exception Parse_error (msg, l) when lenient ->
         incr malformed;
         if !malformed <= max_recorded_errors then errors := (msg, l) :: !errors
     done
   with End_of_file -> ());
  ((g, k), { triples = !triples; malformed = !malformed; errors = List.rev !errors })

let read ic = fst (read_report ~lenient:false ic)

let load_report ?lenient path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_report ?lenient ic)

let load path = fst (load_report ~lenient:false path)
