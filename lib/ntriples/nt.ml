module Graph = Graphstore.Graph
module Interner = Graphstore.Interner

exception Parse_error of string * int

(* Reserved predicates: the four ontology edge labels of E_K (§2) plus a
   marker for isolated nodes (which plain triples cannot express). *)
let p_sc = "sc"
let p_sp = "sp"
let p_dom = "dom"
let p_range = "range"
let p_node = "node"

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '>' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    s

let write_triple oc s p o =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '<';
  escape buf s;
  Buffer.add_string buf "> <";
  escape buf p;
  Buffer.add_string buf "> <";
  escape buf o;
  Buffer.add_string buf "> .";
  output_string oc (Buffer.contents buf);
  output_char oc '\n'

let write_graph oc g =
  let interner = Graph.interner g in
  let touched = Graphstore.Oid_set.create ~capacity:(Graph.n_nodes g) () in
  Graph.iter_edges g (fun src label dst ->
      Graphstore.Oid_set.add touched src;
      Graphstore.Oid_set.add touched dst;
      write_triple oc (Graph.node_label g src) (Interner.name interner label) (Graph.node_label g dst));
  Graph.iter_nodes g (fun oid ->
      if not (Graphstore.Oid_set.mem touched oid) then
        let l = Graph.node_label g oid in
        write_triple oc l p_node l)

let write_ontology oc k =
  let interner = Ontology.interner k in
  let name = Interner.name interner in
  List.iter
    (fun cls -> List.iter (fun super -> write_triple oc (name cls) p_sc (name super)) (Ontology.super_classes k cls))
    (Ontology.classes k);
  List.iter
    (fun p ->
      List.iter (fun super -> write_triple oc (name p) p_sp (name super)) (Ontology.super_properties k p);
      (match Ontology.domain k p with Some c -> write_triple oc (name p) p_dom (name c) | None -> ());
      match Ontology.range k p with Some c -> write_triple oc (name p) p_range (name c) | None -> ())
    (Ontology.properties k)

let save path ~graph ~ontology =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_graph oc graph;
      write_ontology oc ontology)

(* --- parsing ------------------------------------------------------- *)

type cursor = { line : string; mutable pos : int; lineno : int }

let fail c msg = raise (Parse_error (msg, c.lineno))

let skip_ws c =
  let n = String.length c.line in
  while c.pos < n && (c.line.[c.pos] = ' ' || c.line.[c.pos] = '\t') do
    c.pos <- c.pos + 1
  done

let term c =
  skip_ws c;
  let n = String.length c.line in
  if c.pos >= n || c.line.[c.pos] <> '<' then fail c "expected '<'";
  c.pos <- c.pos + 1;
  let buf = Buffer.create 32 in
  let rec scan () =
    if c.pos >= n then fail c "unterminated term"
    else
      match c.line.[c.pos] with
      | '>' -> c.pos <- c.pos + 1
      | '\\' ->
        if c.pos + 1 >= n then fail c "dangling escape";
        Buffer.add_char buf c.line.[c.pos + 1];
        c.pos <- c.pos + 2;
        scan ()
      | ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        scan ()
  in
  scan ();
  Buffer.contents buf

let parse_line lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else begin
    let c = { line = trimmed; pos = 0; lineno } in
    let s = term c in
    let p = term c in
    let o = term c in
    skip_ws c;
    if c.pos >= String.length c.line || c.line.[c.pos] <> '.' then fail c "expected terminating '.'";
    Some (s, p, o)
  end

type report = { triples : int; malformed : int; errors : (string * int) list }

let max_recorded_errors = 5

let ingest g k (s, p, o) =
  if p = p_sc then begin
    Ontology.add_subclass k s o;
    ignore (Graph.add_node g s);
    ignore (Graph.add_node g o)
  end
  else if p = p_sp then Ontology.add_subproperty k s o
  else if p = p_dom then Ontology.add_domain k s o
  else if p = p_range then Ontology.add_range k s o
  else if p = p_node then ignore (Graph.add_node g s)
  else begin
    let src = Graph.add_node g s in
    let dst = Graph.add_node g o in
    Graph.add_edge_s g src p dst
  end

let default_max_line_bytes = 1 lsl 20 (* 1 MiB — generous for a triple line *)

(* Bounded replacement for [input_line]: on a multi-gigabyte line,
   [input_line] materialises the whole line before the parser can reject
   it, so a hostile input exhausts memory inside the loader.  Past [cap]
   the rest of the line is consumed but not retained (a lenient load can
   resume at the next line) and [`Oversized] is returned. *)
let input_line_bounded ic cap =
  let buf = Buffer.create 128 in
  let rec go count oversized =
    match input_char ic with
    | exception End_of_file ->
      if count = 0 then `Eof else if oversized then `Oversized else `Line (Buffer.contents buf)
    | '\n' -> if oversized then `Oversized else `Line (Buffer.contents buf)
    | c ->
      if count < cap then Buffer.add_char buf c;
      go (count + 1) (oversized || count >= cap)
  in
  go 0 false

(* The shared ingestion loop behind the channel and string readers.
   [next_line] yields [`Line s] (at most [max_line_bytes] bytes),
   [`Oversized] for a capped line, or [`Eof]. *)
let read_report_gen ~lenient ~max_line_bytes next_line =
  let g = Graph.create () in
  let k = Ontology.create (Graph.interner g) in
  let lineno = ref 0 in
  let triples = ref 0 and malformed = ref 0 and errors = ref [] in
  let record msg l =
    incr malformed;
    if !malformed <= max_recorded_errors then errors := (msg, l) :: !errors
  in
  let rec loop () =
    match next_line () with
    | `Eof -> ()
    | `Oversized ->
      incr lineno;
      let msg = Printf.sprintf "line longer than %d bytes" max_line_bytes in
      if lenient then record msg !lineno else raise (Parse_error (msg, !lineno));
      loop ()
    | `Line line -> (
      incr lineno;
      (match parse_line !lineno line with
      | None -> ()
      | Some spo ->
        ingest g k spo;
        incr triples
      | exception Parse_error (msg, l) when lenient -> record msg l);
      loop ())
  in
  loop ();
  ((g, k), { triples = !triples; malformed = !malformed; errors = List.rev !errors })

let read_report ?(lenient = false) ?(max_line_bytes = default_max_line_bytes) ic =
  read_report_gen ~lenient ~max_line_bytes (fun () -> input_line_bounded ic max_line_bytes)

let read_string_report ?(lenient = false) ?(max_line_bytes = default_max_line_bytes) s =
  let pos = ref 0 in
  let n = String.length s in
  let next_line () =
    if !pos >= n then `Eof
    else begin
      let stop = match String.index_from_opt s !pos '\n' with Some i -> i | None -> n in
      let len = stop - !pos in
      let r = if len > max_line_bytes then `Oversized else `Line (String.sub s !pos len) in
      pos := stop + 1;
      r
    end
  in
  read_report_gen ~lenient ~max_line_bytes next_line

let read ic = fst (read_report ~lenient:false ic)

let load_report ?lenient ?max_line_bytes path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_report ?lenient ?max_line_bytes ic)

let load path = fst (load_report ~lenient:false path)
