(** On-disk persistence for data graphs and ontologies, in an N-Triples-like
    line format.

    The paper's data model is RDF minus blank nodes, so a triple-per-line
    text format round-trips it exactly:

    {v
      <node label> <edge label> <node label> .
      <sub class>  <sc>         <super class> .
      <sub prop>   <sp>         <super prop> .
      <property>   <dom>        <class> .
      <property>   <range>      <class> .
    v}

    Each term is enclosed in angle brackets; [>] and [\\] inside labels are
    backslash-escaped.  Ontology triples use the reserved predicates [sc],
    [sp], [dom], [range] (§2: these are disjoint from the graph alphabet),
    and may be mixed freely with data triples in one file. *)

exception Parse_error of string * int
(** [(message, line_number)]. *)

(** {1 Writing} *)

val write_graph : out_channel -> Graphstore.Graph.t -> unit

val write_ontology : out_channel -> Ontology.t -> unit

val save :
  string -> graph:Graphstore.Graph.t -> ontology:Ontology.t -> unit
(** [save path ~graph ~ontology] writes both into one file. *)

(** {1 Reading} *)

val read : in_channel -> Graphstore.Graph.t * Ontology.t
(** Parse a (possibly mixed) triple stream into a fresh graph and ontology
    sharing one interner.  Nodes mentioned only in ontology triples become
    graph nodes too (they are class nodes of [V_G ∩ V_K]).
    @raise Parse_error on malformed lines. *)

val load : string -> Graphstore.Graph.t * Ontology.t

type report = {
  triples : int;  (** well-formed triples ingested *)
  malformed : int;  (** malformed lines skipped (always 0 when strict) *)
  errors : (string * int) list;
      (** the first few [(message, line)] parse errors, oldest first, for
          diagnostics — capped so a thoroughly broken file cannot blow up
          memory *)
}

val default_max_line_bytes : int
(** The default line-length cap (1 MiB).  [input_line] would materialise a
    multi-gigabyte line in full before the parser could reject it; the
    bounded reader retains at most this many bytes per line and treats
    anything longer as a typed oversized-line [Parse_error] (strict) or a
    counted malformed line (lenient — the rest of the line is consumed, so
    the load resumes at the next line). *)

val input_line_bounded : in_channel -> int -> [ `Line of string | `Oversized | `Eof ]
(** The bounded replacement for [input_line] behind {!read_report}, exposed
    for other line-oriented readers (the query server's request framing): at
    most [cap] bytes of one line are retained; a longer line is consumed to
    its newline (so the stream resumes at the next line) and reported as
    [`Oversized] instead of materialised. *)

val read_report :
  ?lenient:bool -> ?max_line_bytes:int -> in_channel -> (Graphstore.Graph.t * Ontology.t) * report
(** Like {!read}, also returning an ingestion {!report}.  With
    [~lenient:true] (default [false]) malformed lines — including lines
    longer than [max_line_bytes] (default {!default_max_line_bytes}) — are
    counted and skipped instead of aborting the load: real-world triple
    dumps routinely contain a handful of broken lines, and a robust loader
    should salvage the rest.  Strict mode still raises [Parse_error] on the
    first bad or oversized line. *)

val read_string_report :
  ?lenient:bool -> ?max_line_bytes:int -> string -> (Graphstore.Graph.t * Ontology.t) * report
(** {!read_report} over an in-memory document (the fuzzing harness's entry
    point — no temp files). *)

val load_report :
  ?lenient:bool -> ?max_line_bytes:int -> string -> (Graphstore.Graph.t * Ontology.t) * report
(** {!read_report} on a file. *)
